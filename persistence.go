package streamrpq

import (
	"fmt"

	"streamrpq/internal/persist"
	"streamrpq/internal/stream"
)

// Durability for the multi-query evaluator: a write-ahead tuple log
// appended by every IngestBatch plus periodic full-state checkpoints
// (window graph, window clock, dictionaries, every query's Δ index), so
// a crashed engine resumes mid-stream via Recover instead of replaying
// the whole window. See internal/persist for the on-disk formats.
//
// Consistency model: batches are logged before they are processed and a
// commit record is appended immediately before IngestBatch returns the
// results — returning is the delivery point. PR 1 made the engines'
// result streams a pure function of the stream prefix, so recovery can
// re-run the WAL suffix and obtain exactly the results the pre-crash
// process computed: results of committed batches are suppressed (never
// a duplicate) and the results of a trailing uncommitted batch are
// redelivered by Recover. The commit-to-return window means delivery
// to the caller is at-most-once under kill -9 — the usual exactly-once
// boundary of a sink outside the commit transaction (see README,
// "Durability & recovery"). Checkpoints are taken between batches —
// sub-batch barriers, the sharded engine's only globally consistent
// points.

// PersistOption configures persistence behaviour for WithPersistence
// and Recover.
type PersistOption func(*persistConfig)

type persistConfig struct {
	fsync bool
	every int
}

// CheckpointEvery makes the evaluator take a checkpoint automatically
// after every n ingested batches (in addition to manual Checkpoint
// calls). n <= 0 disables automatic checkpoints (the default).
func CheckpointEvery(n int) PersistOption {
	return func(c *persistConfig) { c.every = n }
}

// WithFsync fsyncs every WAL append and snapshot write. Off by default:
// without it the data survives a process crash but not necessarily an
// OS crash or power failure.
func WithFsync() PersistOption {
	return func(c *persistConfig) { c.fsync = true }
}

// persistState is the facade-side persistence bookkeeping attached to a
// MultiEvaluator.
type persistState struct {
	mgr   *persist.Manager
	cfg   persistConfig
	vMark int // dictionary lengths already covered by the WAL/snapshot
	lMark int

	appliedTuples  int64
	appliedBatches uint64
	batchesSince   int

	// deferred holds a durability failure (commit append or automatic
	// checkpoint) that happened after a batch was applied and its
	// results became returnable: those results must still reach the
	// caller — losing them, or provoking a double-applying retry, would
	// violate the delivery contract — so the error surfaces on the next
	// call instead, before any state is touched.
	deferred error
	// pendingCommit is a commit record whose append failed; it is
	// retried before the next WAL append (and rendered moot by a
	// successful checkpoint, which supersedes the whole segment). Until
	// it lands, a crash degrades that batch to at-least-once: recovery
	// would redeliver results the caller already has.
	pendingCommit *pendingCommit
}

type pendingCommit struct {
	lastTS  int64
	results int64
}

// WithPersistence enables durability: dir is initialized as a fresh
// persistence directory (it must not already contain persisted state —
// resume from existing state with Recover), an initial checkpoint of
// the empty evaluator is written, and every subsequent IngestBatch or
// Ingest call is logged before it is processed. Call after WithShards
// and before the first tuple.
func (m *MultiEvaluator) WithPersistence(dir string, opts ...PersistOption) error {
	if m.started {
		return fmt.Errorf("streamrpq: WithPersistence after processing started")
	}
	if m.persist != nil {
		return fmt.Errorf("streamrpq: persistence already enabled")
	}
	var cfg persistConfig
	for _, o := range opts {
		o(&cfg)
	}
	mgr, err := persist.Create(dir, persist.Options{Fsync: cfg.fsync})
	if err != nil {
		return err
	}
	p := &persistState{mgr: mgr, cfg: cfg}
	m.persist = p
	// The generation-0 checkpoint records the evaluator metadata (spec,
	// queries, shard count) with the empty state, so recovery always has
	// a snapshot to start from — falling back to it means a cold replay
	// of the full WAL.
	if err := m.Checkpoint(); err != nil {
		m.persist = nil
		mgr.Close()
		return err
	}
	return nil
}

// Checkpoint writes a full-state snapshot and starts a fresh WAL
// generation. Call between IngestBatch calls only. Recovery loads the
// latest valid checkpoint and replays only the WAL written after it,
// which is what makes restart cost proportional to the checkpoint
// interval instead of the window size.
func (m *MultiEvaluator) Checkpoint() error {
	p := m.persist
	if p == nil {
		return fmt.Errorf("streamrpq: Checkpoint without WithPersistence")
	}
	snap := &persist.Snapshot{
		Spec:           m.spec,
		Sharded:        m.sharded != nil,
		Shards:         m.NumShards(),
		Sharing:        m.sharing,
		Vertices:       m.vertices.Names(),
		Labels:         m.labels.Names(),
		LastTS:         m.lastTS,
		Started:        m.started,
		AppliedTuples:  p.appliedTuples,
		AppliedBatches: p.appliedBatches,
	}
	for _, member := range m.queries {
		if member.removed {
			continue // tombstones compact away; recovery renumbers live queries
		}
		snap.Queries = append(snap.Queries, member.query.String())
	}
	if m.sharded != nil {
		snap.State = m.sharded.SnapshotState()
	} else {
		snap.State = m.multi.SnapshotState()
	}
	if err := p.mgr.WriteSnapshot(snap); err != nil {
		return err
	}
	// A successful checkpoint supersedes the old WAL segment entirely —
	// recovery starts here — so a commit append still pending for that
	// segment is moot.
	p.pendingCommit = nil
	p.vMark = m.vertices.Len()
	p.lMark = m.labels.Len()
	p.batchesSince = 0
	return nil
}

// AppliedTuples returns the number of tuples ingested since stream
// start, as tracked by the persistence layer (0 without persistence).
// After Recover it counts the replayed WAL suffix too, which is what a
// resuming driver uses to skip the already-applied prefix of its input.
func (m *MultiEvaluator) AppliedTuples() int64 {
	if m.persist == nil {
		return 0
	}
	return m.persist.appliedTuples
}

// appendBatch logs one encoded batch (write-ahead: before processing),
// including the dictionary names interned while encoding it. A commit
// append deferred by an earlier failure is flushed first. When no WAL
// segment is open — a failed checkpoint closes the old segment before
// the new one exists — a fresh checkpoint is taken to repair the
// directory (we are between batches here, a consistent point) and the
// append retried once, so ingestion self-heals once the underlying
// fault clears instead of wedging until a manual Checkpoint.
func (p *persistState) appendBatch(m *MultiEvaluator, encoded []stream.Tuple) error {
	// repair attempts a fresh checkpoint, which both reopens the WAL (a
	// new segment) and supersedes any pending commit; on failure the
	// original error is what the caller should see.
	repair := func(orig error) error {
		if ckErr := m.Checkpoint(); ckErr != nil {
			return orig
		}
		return nil
	}
	if err := p.flushPendingCommit(); err != nil {
		if err := repair(err); err != nil {
			return err
		}
	}
	try := func() error {
		vdelta := m.vertices.Names()[p.vMark:]
		ldelta := m.labels.Names()[p.lMark:]
		if err := p.mgr.AppendBatch(vdelta, ldelta, encoded); err != nil {
			return err
		}
		p.vMark = m.vertices.Len()
		p.lMark = m.labels.Len()
		p.appliedTuples += int64(len(encoded))
		p.appliedBatches++
		return nil
	}
	err := try()
	if err == nil {
		return nil
	}
	if err := repair(err); err != nil {
		return err
	}
	return try()
}

// commitBatch marks the batch's results as delivered and takes an
// automatic checkpoint when one is due. Durability failures are NOT
// returned here: the batch is already applied and its results are
// about to be handed to the caller, so an error return would either
// lose them (continuing acknowledges them at the next commit) or
// double-apply them (the natural retry re-ingests the batch). Instead
// a failed commit append is remembered and retried before the next WAL
// append, a failed automatic checkpoint retries at the next batch
// (batchesSince only resets on success), and either failure surfaces
// on the next call via pendingError.
func (p *persistState) commitBatch(m *MultiEvaluator, lastTS int64, out []BatchResult) error {
	var results int64
	for _, br := range out {
		results += int64(len(br.Matches))
	}
	if err := p.mgr.AppendCommit(lastTS, results); err != nil {
		p.pendingCommit = &pendingCommit{lastTS: lastTS, results: results}
		p.deferred = fmt.Errorf("streamrpq: commit append failed (results of the previous batch were delivered; until the commit is retried a crash redelivers them): %w", err)
		return nil
	}
	p.batchesSince++
	if p.cfg.every > 0 && p.batchesSince >= p.cfg.every {
		if err := m.Checkpoint(); err != nil {
			p.deferred = fmt.Errorf("streamrpq: automatic checkpoint failed (results of the previous batch were delivered): %w", err)
		}
	}
	return nil
}

// flushPendingCommit retries a commit append that previously failed.
// It must succeed before another batch record may be appended (the
// commit-acknowledges-all-since-previous-commit pairing would otherwise
// ack the new batch prematurely).
func (p *persistState) flushPendingCommit() error {
	if p.pendingCommit == nil {
		return nil
	}
	if err := p.mgr.AppendCommit(p.pendingCommit.lastTS, p.pendingCommit.results); err != nil {
		return fmt.Errorf("streamrpq: retrying deferred commit append: %w", err)
	}
	p.pendingCommit = nil
	return nil
}

// pendingError reports and clears a deferred checkpoint failure. Called
// at the top of the next ingestion, before any state is touched, so the
// rejected batch can simply be retried.
func (p *persistState) pendingError() error {
	err := p.deferred
	p.deferred = nil
	return err
}

// Recover rebuilds a persisted MultiEvaluator from dir: it loads the
// latest valid checkpoint (falling back past corrupt or truncated
// snapshot files), restores the window graph, dictionaries and every
// query's Δ index, then replays the WAL suffix written after the
// checkpoint. Results of batches whose commit record made it to disk
// are suppressed — the pre-crash process already delivered them — and
// the results of a trailing uncommitted batch are returned as
// redelivered (their Tuple indexes are relative to that batch). The
// returned evaluator continues exactly where the crashed one stopped:
// on append-only streams the concatenation of pre-crash results,
// redelivered results and post-recovery results is identical to an
// uninterrupted run.
func Recover(dir string, opts ...PersistOption) (*MultiEvaluator, []BatchResult, error) {
	var cfg persistConfig
	for _, o := range opts {
		o(&cfg)
	}
	mgr, snap, err := persist.Open(dir, persist.Options{Fsync: cfg.fsync})
	if err != nil {
		return nil, nil, err
	}
	m, err := rebuildFromSnapshot(snap)
	if err != nil {
		mgr.Close()
		return nil, nil, err
	}
	p := &persistState{
		mgr:            mgr,
		cfg:            cfg,
		vMark:          m.vertices.Len(),
		lMark:          m.labels.Len(),
		appliedTuples:  snap.AppliedTuples,
		appliedBatches: snap.AppliedBatches,
	}

	// Replay the WAL suffix. A commit record acknowledges every batch
	// applied before it (the facade appends one per batch, so normally
	// the unacked list holds at most one batch); whatever is still
	// unacknowledged at the end of the log was never delivered and is
	// redelivered by this call.
	var unacked []BatchResult
	var unackedBatches int
	var lastTS int64
	err = mgr.Replay(func(rec *persist.WalRecord) error {
		if !rec.Batch {
			unacked, unackedBatches = nil, 0
			return nil
		}
		for _, name := range rec.VDelta {
			m.vertices.ID(name)
		}
		for _, name := range rec.LDelta {
			m.labels.ID(name)
		}
		out, err := m.ingestEncoded(rec.Tuples)
		if err != nil {
			return err
		}
		p.appliedTuples += int64(len(rec.Tuples))
		p.appliedBatches++
		p.vMark, p.lMark = m.vertices.Len(), m.labels.Len()
		unacked = append(unacked, out...)
		unackedBatches++
		if n := len(rec.Tuples); n > 0 {
			lastTS = rec.Tuples[n-1].TS
		}
		return nil
	})
	if err != nil {
		m.Close()
		mgr.Close()
		return nil, nil, err
	}
	if unackedBatches > 0 {
		// Acknowledge what this call is about to return: without the
		// commit record, a second crash before the next batch would make
		// the next Recover redeliver these results a second time.
		var results int64
		for _, br := range unacked {
			results += int64(len(br.Matches))
		}
		if err := mgr.AppendCommit(lastTS, results); err != nil {
			m.Close()
			mgr.Close()
			return nil, nil, err
		}
	}
	m.persist = p
	return m, unacked, nil
}

// rebuildFromSnapshot reconstructs the evaluator a snapshot describes:
// recompile the queries (compilation is deterministic, so the bound
// automata and the label-id prefix come out identical), reload the
// dictionaries, re-shard, and restore the engine state.
func rebuildFromSnapshot(snap *persist.Snapshot) (*MultiEvaluator, error) {
	queries := make([]*Query, len(snap.Queries))
	for i, src := range snap.Queries {
		q, err := Compile(src)
		if err != nil {
			return nil, fmt.Errorf("streamrpq: recover: recompiling query %d (%q): %w", i, src, err)
		}
		queries[i] = q
	}
	var m *MultiEvaluator
	var err error
	if snap.State != nil && snap.State.Retain {
		// Dynamic (retain-all) evaluator: labels of queries registered
		// mid-stream interleave with stream labels in the dictionary, so
		// the static intern-alphabets-then-Load sequence cannot reproduce
		// the persisted id assignment. Instead construct an empty
		// evaluator, load the full dictionaries, and bind every query
		// against the complete label space — each alphabet label is
		// already in the dictionary, and binding older queries against a
		// larger space than at first registration is emission-equivalent
		// (the ΣQ bounds guards in core skip labels outside a member's
		// alphabet regardless of binding width).
		m, err = NewMultiEvaluator(snap.Spec.Size, snap.Spec.Slide)
		if err != nil {
			return nil, err
		}
		if err := m.labels.Load(snap.Labels); err != nil {
			return nil, fmt.Errorf("streamrpq: recover: label dictionary: %w", err)
		}
		if err := m.vertices.Load(snap.Vertices); err != nil {
			return nil, fmt.Errorf("streamrpq: recover: vertex dictionary: %w", err)
		}
		if err := m.EnableDynamicQueries(); err != nil {
			return nil, err
		}
		for _, q := range queries {
			if err := m.addQuery(q); err != nil {
				return nil, err
			}
		}
	} else {
		m, err = NewMultiEvaluator(snap.Spec.Size, snap.Spec.Slide, queries...)
		if err != nil {
			return nil, err
		}
		if err := m.labels.Load(snap.Labels); err != nil {
			return nil, fmt.Errorf("streamrpq: recover: label dictionary: %w", err)
		}
		if err := m.vertices.Load(snap.Vertices); err != nil {
			return nil, fmt.Errorf("streamrpq: recover: vertex dictionary: %w", err)
		}
	}
	// The sharing mode must be in force before RestoreState: the
	// snapshot's query→group mapping is restored verbatim either way,
	// but registration-formed groups that already match it are reused,
	// and a v3 snapshot's private states only re-deduplicate under a
	// sharing coordinator.
	if err := m.WithQuerySharing(snap.Sharing); err != nil {
		return nil, err
	}
	var restoreErr error
	if snap.Sharded {
		if err := m.WithShards(snap.Shards); err != nil {
			return nil, err
		}
		restoreErr = m.sharded.RestoreState(snap.State)
	} else {
		restoreErr = m.multi.RestoreState(snap.State)
	}
	if restoreErr != nil {
		m.Close()
		return nil, fmt.Errorf("streamrpq: recover: %w", restoreErr)
	}
	m.lastTS = snap.LastTS
	m.started = snap.Started
	return m, nil
}
