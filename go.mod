module streamrpq

go 1.24
