// Example multiquery runs several persistent RPQs concurrently over
// one shared sliding window with the sharded multi-query engine:
// queries are partitioned over worker shards (WithShards), tuples are
// ingested in batches (IngestBatch), and the merged results come back
// in a deterministic (tuple, query, From, To) order.
package main

import (
	"fmt"
	"log"

	"streamrpq"
)

func main() {
	queries := []*streamrpq.Query{
		streamrpq.MustCompile("follows+"),
		streamrpq.MustCompile("follows/mentions"),
		streamrpq.MustCompile("(follows/mentions)+"),
	}
	m, err := streamrpq.NewMultiEvaluator(15, 1, queries...)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.WithShards(2); err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	batch := []streamrpq.Tuple{
		{TS: 1, Src: "ann", Dst: "bob", Label: "follows"},
		{TS: 2, Src: "bob", Dst: "cat", Label: "follows"},
		{TS: 3, Src: "cat", Dst: "dan", Label: "mentions"},
		{TS: 4, Src: "dan", Dst: "ann", Label: "follows"},
	}
	results, err := m.IngestBatch(batch)
	if err != nil {
		log.Fatal(err)
	}
	for _, br := range results {
		t := batch[br.Tuple]
		fmt.Printf("tuple %d (%s-[%s]->%s) matched %q:\n", br.Tuple, t.Src, t.Label, t.Dst, br.Query)
		for _, match := range br.Matches {
			fmt.Printf("  %s -> %s @%d\n", match.From, match.To, match.TS)
		}
	}

	st := m.Stats()
	fmt.Printf("window: %d edges, %d spanning trees over %d queries on %d shards\n",
		st.Edges, st.Trees, m.NumQueries(), m.NumShards())
}
