// Social-network notifications: the use case motivating the paper's
// introduction. A recommendation service watches the interaction
// stream of a social platform and notifies users when another user
// becomes reachable through a chain of endorsements — a friend of a
// friend who liked content the user created.
//
// Two persistent queries run side by side over the same stream:
//
//	influence: knows+                        (transitive friendship)
//	reach:     knows*/likes/hasCreator       (someone in my friend
//	                                          closure liked a post of X)
//
// The stream is synthetic LDBC-like activity. Run with:
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"math/rand"

	"streamrpq"
)

func main() {
	influence, err := streamrpq.NewEvaluator(
		streamrpq.MustCompile("knows+"),
		streamrpq.WithWindow(200, 20))
	if err != nil {
		log.Fatal(err)
	}
	reach, err := streamrpq.NewEvaluator(
		streamrpq.MustCompile("knows*/likes/hasCreator"),
		streamrpq.WithWindow(200, 20))
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	users := []string{"ana", "bo", "cem", "dara", "eli", "fay", "gus", "hana"}
	posts := 0

	var influenceCount, reachCount int
	creator := map[string]string{} // post -> author

	for ts := int64(1); ts <= 600; ts++ {
		var t streamrpq.Tuple
		switch rng.Intn(4) {
		case 0, 1: // a user befriends another
			a, b := users[rng.Intn(len(users))], users[rng.Intn(len(users))]
			if a == b {
				continue
			}
			t = streamrpq.Tuple{TS: ts, Src: a, Dst: b, Label: "knows"}
		case 2: // a user publishes a post
			posts++
			post := fmt.Sprintf("post%03d", posts)
			author := users[rng.Intn(len(users))]
			creator[post] = author
			t = streamrpq.Tuple{TS: ts, Src: post, Dst: author, Label: "hasCreator"}
		default: // a user likes a random known post
			if posts == 0 {
				continue
			}
			post := fmt.Sprintf("post%03d", 1+rng.Intn(posts))
			t = streamrpq.Tuple{TS: ts, Src: users[rng.Intn(len(users))], Dst: post, Label: "likes"}
		}

		for _, m := range mustIngest(influence, t) {
			influenceCount++
			if influenceCount <= 8 {
				fmt.Printf("t=%3d [influence] %s can now reach %s through friendships\n", ts, m.From, m.To)
			}
		}
		for _, m := range mustIngest(reach, t) {
			if m.From == m.To {
				continue // self-endorsement
			}
			reachCount++
			if reachCount <= 8 {
				fmt.Printf("t=%3d [reach]     notify %s: your friend circle engaged with %s's content\n", ts, m.From, m.To)
			}
		}
	}

	fmt.Printf("\ninfluence pairs: %d, reach notifications: %d\n", influenceCount, reachCount)
	si, sr := influence.Stats(), reach.Stats()
	fmt.Printf("influence engine: %d tuples (%d dropped), Δ %d trees/%d nodes\n",
		si.TuplesSeen, si.TuplesDropped, si.Trees, si.Nodes)
	fmt.Printf("reach engine:     %d tuples (%d dropped), Δ %d trees/%d nodes\n",
		sr.TuplesSeen, sr.TuplesDropped, sr.Trees, sr.Nodes)
}

func mustIngest(ev *streamrpq.Evaluator, t streamrpq.Tuple) []streamrpq.Match {
	ms, err := ev.Ingest(t)
	if err != nil {
		log.Fatal(err)
	}
	return ms
}
