// Multi-query workload with attribute predicates: an e-commerce
// platform (the paper's introductory use case) runs several persistent
// navigational queries over one interaction stream, sharing the window
// content across queries, and uses an edge filter to keep only
// high-signal interactions (the property-graph predicate direction of
// the paper's future work).
//
// Run with:
//
//	go run ./examples/recommendations
package main

import (
	"fmt"
	"log"
	"math/rand"

	"streamrpq"
)

func main() {
	// Three persistent queries over the same stream:
	//   coview:   viewed/viewedBy         (users who looked at the same item)
	//   chain:    bought/alsoBought+      (purchase-association chains)
	//   trust:    follows+/bought         (an item reachable through my follow network)
	coview := streamrpq.MustCompile("viewed/viewedBy")
	chain := streamrpq.MustCompile("bought/alsoBought+")
	trust := streamrpq.MustCompile("follows+/bought")

	multi, err := streamrpq.NewMultiEvaluator(300, 30, coview, chain, trust)
	if err != nil {
		log.Fatal(err)
	}

	// A separate single-query evaluator demonstrates attribute
	// predicates: only purchases above a price threshold count.
	bigTicket, err := streamrpq.NewEvaluator(
		streamrpq.MustCompile("follows/bought"),
		streamrpq.WithWindow(300, 30),
		streamrpq.WithEdgeFilter(func(t streamrpq.Tuple) bool {
			return t.Label != "bought" || t.Props["price"] >= "100" // lexicographic: demo data uses 3-digit prices
		}))
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	users := []string{"u1", "u2", "u3", "u4", "u5", "u6"}
	items := []string{"laptop", "phone", "case", "cable", "dock"}
	prices := map[string]string{"laptop": "950", "phone": "600", "case": "015", "cable": "009", "dock": "120"}

	counts := map[string]int{}
	for ts := int64(1); ts <= 400; ts++ {
		var t streamrpq.Tuple
		switch rng.Intn(5) {
		case 0:
			t = streamrpq.Tuple{TS: ts, Src: users[rng.Intn(len(users))], Dst: users[rng.Intn(len(users))], Label: "follows"}
		case 1:
			u, it := users[rng.Intn(len(users))], items[rng.Intn(len(items))]
			t = streamrpq.Tuple{TS: ts, Src: u, Dst: it, Label: "viewed"}
			// Mirror edge for co-view joins.
			if _, err := multi.Ingest(t); err != nil {
				log.Fatal(err)
			}
			counts["events"]++
			t = streamrpq.Tuple{TS: ts, Src: it, Dst: u, Label: "viewedBy"}
		case 2:
			u, it := users[rng.Intn(len(users))], items[rng.Intn(len(items))]
			t = streamrpq.Tuple{TS: ts, Src: u, Dst: it, Label: "bought", Props: map[string]string{"price": prices[it]}}
		default:
			a, b := items[rng.Intn(len(items))], items[rng.Intn(len(items))]
			if a == b {
				continue
			}
			t = streamrpq.Tuple{TS: ts, Src: a, Dst: b, Label: "alsoBought"}
		}

		results, err := multi.Ingest(t)
		if err != nil {
			log.Fatal(err)
		}
		counts["events"]++
		for _, qr := range results {
			counts[qr.Query.String()] += len(qr.Matches)
		}
		if ms, err := bigTicket.Ingest(t); err == nil {
			counts["big-ticket"] += len(ms)
		}
	}

	fmt.Printf("processed %d events through %d shared queries\n\n", counts["events"], multi.NumQueries())
	for _, q := range []string{"viewed/viewedBy", "bought/alsoBought+", "follows+/bought"} {
		fmt.Printf("%-22s %5d matches\n", q, counts[q])
	}
	fmt.Printf("%-22s %5d matches (price-filtered follows/bought)\n", "big-ticket", counts["big-ticket"])
	st := multi.Stats()
	fmt.Printf("\nshared window: %d edges / %d vertices stored once for all queries\n", st.Edges, st.Vertices)
}
