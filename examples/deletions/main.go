// Explicit deletions: an e-commerce fraud scenario exercising negative
// tuples (§3.2 of the paper). The system watches chains of referral
// and purchase events; when a referral is found fraudulent it is
// explicitly deleted from the stream, and every result that depended
// on it is retracted through the invalidation channel.
//
// Run with:
//
//	go run ./examples/deletions
package main

import (
	"fmt"
	"log"

	"streamrpq"
)

func main() {
	// referral+ / purchase : someone whose referral chain led to a sale.
	q := streamrpq.MustCompile("referral+/purchase")

	var retracted []streamrpq.Match
	ev, err := streamrpq.NewEvaluator(q,
		streamrpq.WithWindow(1000, 10),
		streamrpq.WithOnInvalidate(func(m streamrpq.Match) {
			retracted = append(retracted, m)
			fmt.Printf("t=%3d RETRACT commission %s -> %s (depended on deleted referral)\n",
				m.TS, m.From, m.To)
		}))
	if err != nil {
		log.Fatal(err)
	}

	steps := []streamrpq.Tuple{
		{TS: 1, Src: "alice", Dst: "bob", Label: "referral"},
		{TS: 2, Src: "bob", Dst: "carol", Label: "referral"},
		{TS: 3, Src: "carol", Dst: "item42", Label: "purchase"},
		// Fraud team voids bob's referral of carol:
		{TS: 10, Src: "bob", Dst: "carol", Label: "referral", Delete: true},
		// A legitimate chain re-forms later:
		{TS: 20, Src: "dave", Dst: "carol", Label: "referral"},
	}

	for _, t := range steps {
		op := "+"
		if t.Delete {
			op = "-"
		}
		fmt.Printf("t=%3d %s %s -%s-> %s\n", t.TS, op, t.Src, t.Label, t.Dst)
		ms, err := ev.Ingest(t)
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range ms {
			fmt.Printf("t=%3d COMMISSION %s earns on %s\n", m.TS, m.From, m.To)
		}
	}

	fmt.Printf("\nretracted results: %d\n", len(retracted))
	st := ev.Stats()
	fmt.Printf("stats: results=%d invalidations=%d trees=%d nodes=%d\n",
		st.Results, st.Invalidations, st.Trees, st.Nodes)
}
