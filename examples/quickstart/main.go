// Quickstart: evaluate a persistent RPQ over the streaming graph of
// Figure 1 of the paper.
//
// The query (follows/mentions)+ asks for pairs of users connected by a
// path of alternating follows and mentions edges, all within a sliding
// window of 15 time units. Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"streamrpq"
)

func main() {
	// Compile the query once (registration time: NFA → minimal DFA).
	q, err := streamrpq.Compile("(follows/mentions)+")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %q: %d DFA states, alphabet %v\n\n", q, q.NumStates(), q.Alphabet())

	ev, err := streamrpq.NewEvaluator(q,
		streamrpq.WithWindow(15, 1), // |W| = 15 time units, slide every unit
		streamrpq.WithSemantics(streamrpq.Arbitrary))
	if err != nil {
		log.Fatal(err)
	}

	// The streaming graph of Figure 1(a).
	stream := []streamrpq.Tuple{
		{TS: 4, Src: "y", Dst: "u", Label: "mentions"},
		{TS: 6, Src: "x", Dst: "z", Label: "follows"},
		{TS: 9, Src: "u", Dst: "v", Label: "follows"},
		{TS: 11, Src: "z", Dst: "w", Label: "mentions"},
		{TS: 13, Src: "x", Dst: "y", Label: "follows"},
		{TS: 14, Src: "z", Dst: "u", Label: "mentions"},
		{TS: 15, Src: "u", Dst: "x", Label: "mentions"},
		{TS: 18, Src: "v", Dst: "y", Label: "mentions"},
		{TS: 19, Src: "w", Dst: "u", Label: "follows"},
	}

	for _, t := range stream {
		matches, err := ev.Ingest(t)
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range matches {
			fmt.Printf("t=%2d  %s -> %s now connected (edge %s -%s-> %s arrived)\n",
				t.TS, m.From, m.To, t.Src, t.Label, t.Dst)
		}
	}

	st := ev.Stats()
	fmt.Printf("\nprocessed %d tuples, emitted %d results, Δ index: %d trees / %d nodes\n",
		st.TuplesSeen, st.Results, st.Trees, st.Nodes)
}
