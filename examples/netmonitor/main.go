// Network monitoring: detect lateral-movement-style chains in a stream
// of connection events — the "communication network monitoring" domain
// of the paper's introduction, evaluated under SIMPLE path semantics:
// an attack chain never needs to revisit a host, and simple paths keep
// the alert specific.
//
// Events carry one of three labels:
//
//	ssh    - interactive login between hosts
//	rpc    - remote procedure call
//	exfil  - bulk outbound transfer
//
// The persistent query  ssh/(ssh|rpc)*/exfil  flags pairs (entry,
// sink): a host chain that starts with a login, continues over logins
// or RPC, and ends in a bulk transfer, all within the last 60 seconds.
//
// Run with:
//
//	go run ./examples/netmonitor
package main

import (
	"fmt"
	"log"
	"math/rand"

	"streamrpq"
)

func main() {
	q := streamrpq.MustCompile("ssh/(ssh|rpc)*/exfil")
	ev, err := streamrpq.NewEvaluator(q,
		streamrpq.WithWindow(60, 5), // 60s window, expire every 5s
		streamrpq.WithSemantics(streamrpq.Simple),
		streamrpq.WithMaxExtends(100_000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitoring query %q (simple paths, %d DFA states)\n\n", q, q.NumStates())

	rng := rand.New(rand.NewSource(13))
	hosts := make([]string, 48)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("host%02d", i)
	}

	alerts := 0
	// Background noise plus one injected attack chain.
	attack := []streamrpq.Tuple{
		{TS: 100, Src: "host00", Dst: "host03", Label: "ssh"},
		{TS: 110, Src: "host03", Dst: "host07", Label: "rpc"},
		{TS: 118, Src: "host07", Dst: "host09", Label: "ssh"},
		{TS: 126, Src: "host09", Dst: "evil.example", Label: "exfil"},
	}
	ai := 0
	for ts := int64(1); ts <= 200; ts++ {
		// Injected attack steps at their scheduled times.
		for ai < len(attack) && attack[ai].TS == ts {
			reportAll(ev, attack[ai], &alerts)
			ai++
		}
		// Random benign traffic: mostly dns/http noise outside the
		// query alphabet, with occasional admin ssh/rpc sessions.
		for k := 0; k < 3; k++ {
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			if src == dst {
				continue
			}
			label := []string{"ssh", "rpc", "dns", "dns", "http", "http", "http", "http"}[rng.Intn(8)]
			reportAll(ev, streamrpq.Tuple{TS: ts, Src: src, Dst: dst, Label: label}, &alerts)
		}
	}

	st := ev.Stats()
	fmt.Printf("\n%d alerts; %d events processed, %d outside the query alphabet dropped\n",
		alerts, st.TuplesSeen, st.TuplesDropped)
	fmt.Printf("conflicts detected: %d (cyclic probe traffic), Δ %d trees / %d nodes\n",
		st.ConflictsFound, st.Trees, st.Nodes)
}

func reportAll(ev *streamrpq.Evaluator, t streamrpq.Tuple, alerts *int) {
	ms, err := ev.Ingest(t)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range ms {
		*alerts++
		if m.To == "evil.example" {
			fmt.Printf("t=%3d ALERT  chain %s -> %s (injected attack)\n", t.TS, m.From, m.To)
		} else if *alerts <= 5 {
			fmt.Printf("t=%3d alert  chain %s -> %s\n", t.TS, m.From, m.To)
		}
	}
}
